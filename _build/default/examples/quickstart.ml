(* Quickstart: build a tiny application with the CFG builder, compile it
   with the GECKO pipeline, and run it on the simulated intermittent
   system — first on steady power, then through a train of power
   failures, checking crash consistency against the steady-power run.

     dune exec examples/quickstart.exe *)

module Isa = Gecko.Isa
module B = Isa.Builder
module Compiler = Gecko.Compiler
open Isa

(* dot_product: result[0] = Σ a[i] * b[i] over 512 elements. *)
let n = 512

let dot_product () =
  let b = B.program "dot_product" in
  let va = B.space b "va" ~words:n ~init:(Array.init n (fun i -> (i mod 97) + 1)) () in
  let vb = B.space b "vb" ~words:n ~init:(Array.init n (fun i -> 2 * (i mod 83))) () in
  let out = B.space b "out" ~words:1 () in
  B.func b "main";
  B.block b "entry";
  B.li b Reg.r0 0;
  (* i *)
  B.li b Reg.r1 0;
  (* acc *)
  B.block b "loop" ~loop_bound:n;
  B.ld b Reg.r2 (B.idx va Reg.r0);
  B.ld b Reg.r3 (B.idx vb Reg.r0);
  B.mul b Reg.r2 Reg.r2 (B.reg Reg.r3);
  B.add b Reg.r1 Reg.r1 (B.reg Reg.r2);
  B.add b Reg.r0 Reg.r0 (B.imm 1);
  B.bin b Instr.Slt Reg.r4 Reg.r0 (B.imm n);
  B.br b Instr.Nz Reg.r4 "loop" "fin";
  B.block b "fin";
  B.st b (B.at out 0) Reg.r1;
  B.halt b;
  B.finish b

let () =
  let prog = dot_product () in

  (* 1. Compile with the full GECKO pipeline. *)
  let p, meta = Compiler.Pipeline.compile Compiler.Scheme.Gecko prog in
  Format.printf "compiled: %a@." Compiler.Meta.pp_stats meta.Compiler.Meta.stats;

  (* 2. Link and run on steady power. *)
  let image = Isa.Link.link p in
  let board = Gecko.Board.default () in
  let outcome, golden =
    Gecko.Machine.run_with_nvm ~board ~image ~meta
      Gecko.Machine.default_options
  in
  let out_addr =
    image.Isa.Link.space_base.((Cfg.find_space image.Isa.Link.prog "out").Instr.space_id)
  in
  Printf.printf "steady power: completed=%b, dot product = %d\n"
    (outcome.Gecko.Machine.completions = 1)
    golden.(out_addr);

  (* 3. Run again on a weak harvester that forces outages mid-run. *)
  let harvester =
    Gecko.Energy.Harvester.thevenin ~v_source:3.3 ~r_source:2000.
  in
  let board =
    { (Gecko.Board.default ~harvester ()) with Gecko.Board.capacitance = 0.6e-6 }
  in
  let o2, nvm =
    Gecko.Machine.run_with_nvm ~board ~image ~meta
      { Gecko.Machine.default_options with max_sim_time = 60. }
  in
  Printf.printf
    "intermittent power: completed=%b after %d reboots / %d rollbacks, dot \
     product = %d\n"
    (o2.Gecko.Machine.completions = 1)
    o2.Gecko.Machine.reboots o2.Gecko.Machine.rollbacks nvm.(out_addr);
  assert (nvm = golden);
  print_endline "crash consistency verified: final memory matches the steady run."
